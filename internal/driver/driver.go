// Package driver is the distributed sweep orchestrator — the fourth
// engine: it runs one census as a fleet of shard workers instead of one
// process. A Plan names the census template, a shard count, and a
// pluggable Worker (in-process census runs for tests and laptops,
// subprocess workers that exec `sweep -worker` for production), and
// Driver.Run schedules every shard over a bounded worker pool, folding
// each worker's streamed PairResult records into the merged census
// incrementally — through the same dedup-and-recount semantics as
// census.Merge — so the final artifact is bit-for-bit identical to an
// unsharded census.Run regardless of worker completion order, retries,
// straggler re-issues, or how a resumed run was split.
//
// Fault tolerance is the point of the layer. Records are validated
// structurally as they arrive (index in range, index in the attempt's
// stripe, guest/host names matching the deterministic enumeration), so
// a corrupted stream fails its attempt instead of poisoning the
// artifact. A failed or short attempt — a worker that crashed, was
// killed, or returned without covering its stripe — is retried with
// exponential backoff up to a per-shard budget, and because pair
// evaluation is deterministic and folding is first-write-wins, records
// that arrived before the crash are kept and duplicates from retries
// or re-issues are discarded. Attempts that run far past the median
// shard wall time are re-issued to another worker (the straggler
// policy); whichever attempt finishes the stripe first wins and the
// sibling is cancelled.
//
// Resume is the same fold applied before scheduling: Plan.Resume seeds
// the fold with records scanned from a partial NDJSON artifact
// (census.ScanStreamFile), shards whose stripes are already covered
// complete immediately, and workers see the remaining pairs through
// Job.Config.Skip so they are never re-evaluated.
package driver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"torusmesh/internal/census"
	"torusmesh/internal/obs"
	"torusmesh/internal/par"
)

// Defaults of the Plan's zero-valued knobs.
const (
	// DefaultRetries is the per-shard retry budget after the first
	// attempt when Plan.Retries is zero.
	DefaultRetries = 2
	// DefaultBackoff is the delay before a shard's first retry when
	// Plan.Backoff is zero; it doubles on every subsequent retry.
	DefaultBackoff = 250 * time.Millisecond
	// DefaultStragglerInterval is how often running attempts are
	// checked against the straggler cutoff when Plan.StragglerInterval
	// is zero.
	DefaultStragglerInterval = 500 * time.Millisecond
)

// Job is one shard attempt handed to a Worker.
type Job struct {
	// Config is the shard-ready census config: the plan template with
	// Shard/Shards set and Skip filtering pairs the driver has already
	// folded (from resume or an earlier attempt of this shard).
	// In-process workers run it directly; subprocess workers carry the
	// equivalent information as command-line flags and may ignore it.
	Config census.Config
	// Shard/Shards name the stripe: the attempt must produce every
	// pair i of the space with i mod Shards == Shard that Skip does
	// not exclude.
	Shard, Shards int
	// Attempt is the 0-based attempt number for this shard, counting
	// retries and straggler re-issues.
	Attempt int
}

// Worker evaluates shard jobs. Implementations must be safe for
// concurrent Run calls (the driver runs up to Plan.Workers attempts at
// once), must deliver each finished pair through emit — any order, but
// one call at a time per attempt — and must abort promptly when ctx is
// cancelled. A non-nil emit error means the driver has rejected the
// record or the attempt; the worker should stop and return it.
type Worker interface {
	Run(ctx context.Context, job Job, emit func(census.PairResult) error) error
}

// Plan describes one distributed census run.
type Plan struct {
	// Config is the unsharded census template: exactly what a single
	// census.Run covering the whole space would take. Shard, Shards,
	// Skip and OnResult must be unset — the driver owns them.
	Config census.Config
	// Shards is how many stripes the pair space splits into (0 = 1).
	Shards int
	// Workers is how many attempts run concurrently (0 = the smaller
	// of Shards and par.Workers()).
	Workers int
	// Worker evaluates the jobs.
	Worker Worker
	// Retries is the per-shard retry budget after the first attempt
	// (0 = DefaultRetries, negative = no retries).
	Retries int
	// Backoff is the delay before a shard's first retry, doubling per
	// retry (0 = DefaultBackoff).
	Backoff time.Duration
	// StragglerFactor re-issues an attempt still running after
	// StragglerFactor × the median completed-shard wall time, once at
	// least two distinct shards have completed cleanly (a 0/1-sample
	// median would let one shard's wall time cancel a healthy lone
	// worker). Zero disables the policy.
	StragglerFactor float64
	// StragglerInterval is the check period (0 = DefaultStragglerInterval).
	StragglerInterval time.Duration
	// Resume seeds the fold with records recovered from a partial
	// artifact (census.ScanStreamFile). Records are validated like
	// worker records; duplicates are discarded.
	Resume []census.PairResult
	// OnResult, when set, is called exactly once per pair as its
	// record is first folded — the journal hook. Calls are serialized
	// and made in fold (arrival) order, which is not index order.
	// Resume records are not replayed. The callback must not retain
	// the pointer and must not call back into the driver.
	OnResult func(*census.PairResult)
	// OnShardDone, when set, is called (serialized) whenever a shard's
	// stripe becomes fully folded, including shards completed purely
	// from Resume records: the shard index, how many shards are done,
	// and the total.
	OnShardDone func(shard, done, total int)
	// Registry receives the driver's metrics (sweepd_* names) — the
	// instruments behind Progress and the -status endpoint. Nil means a
	// private registry; cmd/sweepd passes obs.Default() so the fold
	// shares a /metrics page with the engines it drives.
	Registry *obs.Registry
	// Clock substitutes the wall clock — attempt timing, the straggler
	// cutoff and the merged census's Elapsed all read it. Nil means
	// time.Now. Wall times never enter artifacts (they serialize as
	// json:"-"), so this is a pure testability knob, aligned with
	// serve.Config's.
	Clock func() time.Time
	// Log, when set, receives progress and retry diagnostics.
	Log func(format string, args ...any)
}

// Driver runs one Plan. Create with New; Run may be called once.
// Progress and the metrics registry are live from New on, so a status
// endpoint can be mounted before — and keep answering after — the run.
type Driver struct {
	plan        Plan
	specs       []string // spec strings in enumeration order
	space       int      // len(specs)^2
	now         func() time.Time
	retries     int
	backoff     time.Duration
	stragglerIv time.Duration

	st  *state
	reg *obs.Registry

	foldedRecords     *obs.Counter
	duplicateRecords  *obs.Counter
	rejectedRecords   *obs.Counter
	attempts          *obs.Counter
	attemptFailures   *obs.Counter
	retriesScheduled  *obs.Counter
	stragglerReissues *obs.Counter
	attemptSeconds    *obs.Histogram
}

// New validates the plan and prepares a driver for it.
func New(plan Plan) (*Driver, error) {
	if plan.Worker == nil {
		return nil, fmt.Errorf("driver: plan has no worker")
	}
	if plan.Config.Shard != 0 || plan.Config.Shards != 0 {
		return nil, fmt.Errorf("driver: plan config must be the unsharded template (got shard %d/%d)",
			plan.Config.Shard, plan.Config.Shards)
	}
	if plan.Config.Skip != nil || plan.Config.OnResult != nil || plan.Config.Interrupt != nil {
		return nil, fmt.Errorf("driver: plan config must leave Skip, OnResult and Interrupt unset")
	}
	if plan.Shards == 0 {
		plan.Shards = 1
	}
	if plan.Shards < 0 {
		return nil, fmt.Errorf("driver: %d shards", plan.Shards)
	}
	if plan.Workers == 0 {
		plan.Workers = min(plan.Shards, par.Workers())
	}
	if plan.Workers < 0 {
		return nil, fmt.Errorf("driver: %d workers", plan.Workers)
	}
	d := &Driver{
		plan:        plan,
		now:         plan.Clock,
		retries:     plan.Retries,
		backoff:     plan.Backoff,
		stragglerIv: plan.StragglerInterval,
	}
	if d.now == nil {
		d.now = time.Now
	}
	switch {
	case d.retries == 0:
		d.retries = DefaultRetries
	case d.retries < 0:
		d.retries = 0
	}
	if d.backoff <= 0 {
		d.backoff = DefaultBackoff
	}
	if d.stragglerIv <= 0 {
		d.stragglerIv = DefaultStragglerInterval
	}
	specs := plan.Config.Specs()
	d.specs = make([]string, len(specs))
	for i, sp := range specs {
		d.specs[i] = sp.String()
	}
	d.space = len(specs) * len(specs)

	// The fold state is allocated here, not in Run, so Progress (and a
	// status endpoint mounted on it) answers from the moment the driver
	// exists.
	m := d.plan.Shards
	d.st = &state{
		results:   make([]census.PairResult, d.space),
		have:      make([]bool, d.space),
		remaining: make([]int, m),
		stripe:    make([]int, m),
		doneShard: make([]bool, m),
		failures:  make([]int, m),
		issued:    make([]int, m),
		reissues:  make([]int, m),
		live:      make([][]*attempt, m),
		wall:      make([]time.Duration, m),
		timed:     make([]bool, m),
	}
	for i := 0; i < d.space; i++ {
		d.st.remaining[i%m]++
		d.st.stripe[i%m]++
	}

	d.reg = plan.Registry
	if d.reg == nil {
		d.reg = obs.NewRegistry()
	}
	d.registerMetrics()
	return d, nil
}

// registerMetrics creates the driver's instruments (sweepd_ prefix —
// the driver is the engine behind that CLI). Gauges read the live fold
// state; counters are incremented on the fold/schedule paths.
func (d *Driver) registerMetrics() {
	r := d.reg
	st := d.st
	r.Describe("sweepd_records_folded_total", "Pair records first-folded into the merged census.")
	d.foldedRecords = r.Counter("sweepd_records_folded_total")
	r.Describe("sweepd_records_duplicate_total", "Pair records discarded as duplicates (retries, straggler races, resume overlap).")
	d.duplicateRecords = r.Counter("sweepd_records_duplicate_total")
	r.Describe("sweepd_records_rejected_total", "Pair records rejected by structural validation.")
	d.rejectedRecords = r.Counter("sweepd_records_rejected_total")
	r.Describe("sweepd_attempts_total", "Shard attempts issued (initial, retries and straggler re-issues).")
	d.attempts = r.Counter("sweepd_attempts_total")
	r.Describe("sweepd_attempt_failures_total", "Shard attempts that failed or returned short.")
	d.attemptFailures = r.Counter("sweepd_attempt_failures_total")
	r.Describe("sweepd_retries_total", "Shard retries scheduled after a failed attempt.")
	d.retriesScheduled = r.Counter("sweepd_retries_total")
	r.Describe("sweepd_straggler_reissues_total", "Attempts re-issued by the straggler policy.")
	d.stragglerReissues = r.Counter("sweepd_straggler_reissues_total")
	r.Describe("sweepd_attempt_seconds", "Shard attempt wall time.")
	d.attemptSeconds = r.Histogram("sweepd_attempt_seconds", obs.DefDurationBuckets())

	r.Describe("sweepd_pairs", "Pairs in the census space.")
	r.GaugeFunc("sweepd_pairs", func() float64 { return float64(d.space) })
	r.Describe("sweepd_pairs_folded", "Pairs folded so far.")
	r.GaugeFunc("sweepd_pairs_folded", func() float64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return float64(st.folded)
	})
	r.Describe("sweepd_shards", "Shards in the plan.")
	r.GaugeFunc("sweepd_shards", func() float64 { return float64(d.plan.Shards) })
	r.Describe("sweepd_shards_done", "Shards whose stripe is fully folded.")
	r.GaugeFunc("sweepd_shards_done", func() float64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return float64(st.done)
	})
	r.Describe("sweepd_attempts_inflight", "Shard attempts running right now.")
	r.GaugeFunc("sweepd_attempts_inflight", func() float64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		n := 0
		for _, lv := range st.live {
			n += len(lv)
		}
		return float64(n)
	})
}

// Registry returns the registry the driver's metrics live on.
func (d *Driver) Registry() *obs.Registry { return d.reg }

func (d *Driver) logf(format string, args ...any) {
	if d.plan.Log != nil {
		d.plan.Log(format, args...)
	}
}

// attempt is one live (or finished) execution of a shard job.
type attempt struct {
	shard, n int
	start    time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	reissued bool // a straggler duplicate has already been issued for it
}

// event is a finished attempt, reported by a pool worker.
type event struct {
	at  *attempt
	err error
	dur time.Duration
}

// state is the fold: every field is guarded by mu. Worker goroutines
// touch it only through fold(); the scheduling fields (attempts, live,
// failures, durations) belong to the Run loop but live here so the
// straggler check and fold-side cancellation see one consistent view.
type state struct {
	mu        sync.Mutex
	results   []census.PairResult // slot per pair index
	have      []bool
	folded    int   // pairs folded so far (== count of have)
	remaining []int // per shard, pairs not yet folded
	stripe    []int // per shard, total pairs in the stripe
	doneShard []bool
	done      int          // completed shards
	failures  []int        // failed attempts per shard
	issued    []int        // attempts issued per shard (numbering)
	reissues  []int        // straggler re-issues per shard
	live      [][]*attempt // running attempts per shard
	// durations holds one clean wall time per completed shard (timed
	// marks which shards contributed; wall keeps the same sample by
	// shard for Progress). One sample per shard, not per attempt: a
	// straggler race can finish both siblings of one shard cleanly, and
	// two samples from a single shard must not pretend to be a
	// fleet-wide median.
	durations []time.Duration
	wall      []time.Duration
	timed     []bool
}

// fold validates one record and folds it into the merged result set.
// shard is the stripe the record must belong to, or -1 for resume
// records (any stripe). Duplicates are discarded: evaluation is
// deterministic, so the first record for a pair is as good as any.
func (d *Driver) fold(st *state, r *census.PairResult, shard int, notify bool) error {
	n := len(d.specs)
	if r.Index < 0 || r.Index >= d.space {
		d.rejectedRecords.Inc()
		return fmt.Errorf("driver: record index %d outside pair space of %d", r.Index, d.space)
	}
	if shard >= 0 && r.Index%d.plan.Shards != shard {
		d.rejectedRecords.Inc()
		return fmt.Errorf("driver: record %d does not belong to shard %d/%d", r.Index, shard, d.plan.Shards)
	}
	if g, h := d.specs[r.Index/n], d.specs[r.Index%n]; r.Guest != g || r.Host != h {
		d.rejectedRecords.Inc()
		return fmt.Errorf("driver: record %d names pair %s -> %s, enumeration says %s -> %s",
			r.Index, r.Guest, r.Host, g, h)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.have[r.Index] {
		d.duplicateRecords.Inc()
		return nil
	}
	st.have[r.Index] = true
	st.folded++
	d.foldedRecords.Inc()
	st.results[r.Index] = *r
	if notify && d.plan.OnResult != nil {
		d.plan.OnResult(&st.results[r.Index])
	}
	s := r.Index % d.plan.Shards
	st.remaining[s]--
	if st.remaining[s] == 0 {
		d.completeShardLocked(st, s)
	}
	return nil
}

// completeShardLocked marks a shard's stripe fully folded and cancels
// its redundant live attempts. Callers hold st.mu.
func (d *Driver) completeShardLocked(st *state, shard int) {
	st.doneShard[shard] = true
	st.done++
	for _, at := range st.live[shard] {
		at.cancel()
	}
	if d.plan.OnShardDone != nil {
		d.plan.OnShardDone(shard, st.done, d.plan.Shards)
	}
}

// Run executes the plan and returns the merged census. The result is
// normalized exactly like census.Merge output (shard 0/1, aggregates
// recounted), so for a given template it is byte-for-byte the artifact
// an unsharded census.Run would have produced.
func (d *Driver) Run(ctx context.Context) (*census.Census, error) {
	start := d.now()
	m := d.plan.Shards
	st := d.st
	// Shards beyond the pair space have empty stripes: complete now,
	// before resume, so their completions are reported exactly once.
	st.mu.Lock()
	for s := 0; s < m; s++ {
		if st.remaining[s] == 0 {
			d.completeShardLocked(st, s)
		}
	}
	st.mu.Unlock()
	for i := range d.plan.Resume {
		if err := d.fold(st, &d.plan.Resume[i], -1, false); err != nil {
			return nil, fmt.Errorf("driver: resume: %v", err)
		}
	}
	if len(d.plan.Resume) > 0 {
		st.mu.Lock()
		resumed, done := len(d.plan.Resume), st.done
		st.mu.Unlock()
		d.logf("resume: %d pairs recovered, %d/%d shards already complete", resumed, done, m)
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	// Attempts are bounded: per shard, 1 initial + retries + one
	// straggler re-issue per preceding attempt — 2·(retries+1) covers
	// it. The queues are sized so neither the Run loop nor a pool
	// worker ever blocks sending into them.
	capacity := m*2*(d.retries+1) + d.plan.Workers + 1
	jobs := make(chan *attempt, capacity)
	events := make(chan event, capacity)
	retries := make(chan int, capacity)

	var wg sync.WaitGroup
	for w := 0; w < d.plan.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for at := range jobs {
				atCtx, job := d.jobFor(st, at)
				begin := d.now()
				err := d.plan.Worker.Run(atCtx, job, func(r census.PairResult) error {
					return d.fold(st, &r, at.shard, true)
				})
				dur := d.now().Sub(begin)
				d.attemptSeconds.Observe(dur.Seconds())
				events <- event{at: at, err: err, dur: dur}
			}
		}()
	}
	stop := func() {
		cancelRun()
		close(jobs)
		wg.Wait()
	}

	issue := func(s int) {
		st.mu.Lock()
		if st.doneShard[s] {
			st.mu.Unlock()
			return
		}
		atCtx, cancel := context.WithCancel(runCtx)
		at := &attempt{shard: s, n: st.issued[s], start: d.now(), ctx: atCtx, cancel: cancel}
		st.issued[s]++
		st.live[s] = append(st.live[s], at)
		st.mu.Unlock()
		d.attempts.Inc()
		jobs <- at
	}
	for s := 0; s < m; s++ {
		if st.remaining[s] > 0 {
			issue(s)
		}
	}

	ticker := time.NewTicker(d.stragglerIv)
	defer ticker.Stop()
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	for {
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		if done == m {
			break
		}
		select {
		case <-ctx.Done():
			stop()
			return nil, ctx.Err()
		case s := <-retries:
			issue(s)
		case <-ticker.C:
			for _, s := range d.stragglers(st) {
				d.logf("shard %d: straggling attempt re-issued", s)
				issue(s)
			}
		case ev := <-events:
			if fatal := d.handleEvent(st, ev, retries, &timers); fatal != nil {
				stop()
				return nil, fatal
			}
		}
	}
	stop()

	c := d.plan.Config.StreamHeader().Census()
	c.Results = st.results
	merged, err := census.Merge(c)
	if err != nil {
		// Unreachable if the fold is correct: every stripe was counted
		// down to zero before we got here.
		return nil, fmt.Errorf("driver: final merge: %v", err)
	}
	merged.Elapsed = d.now().Sub(start)
	return merged, nil
}

// jobFor builds the shard-ready job for an attempt. The Skip closure
// reads the live fold, so a retry never re-evaluates pairs an earlier
// attempt already delivered.
func (d *Driver) jobFor(st *state, at *attempt) (context.Context, Job) {
	cfg := d.plan.Config
	cfg.Shard, cfg.Shards = at.shard, d.plan.Shards
	cfg.Skip = func(i int) bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		return i >= 0 && i < len(st.have) && st.have[i]
	}
	return at.ctx, Job{Config: cfg, Shard: at.shard, Shards: d.plan.Shards, Attempt: at.n}
}

// handleEvent processes one finished attempt: success bookkeeping, or
// failure accounting with backoff-scheduled retries. A non-nil return
// aborts the run.
func (d *Driver) handleEvent(st *state, ev event, retries chan<- int, timers *[]*time.Timer) error {
	s := ev.at.shard
	st.mu.Lock()
	// Drop the attempt from the live list.
	lv := st.live[s]
	for i, at := range lv {
		if at == ev.at {
			st.live[s] = append(lv[:i], lv[i+1:]...)
			break
		}
	}
	shardDone := st.doneShard[s]
	if shardDone {
		// The stripe is covered; this attempt either finished it or
		// lost a straggler race. Record the shard's first clean wall
		// time for the straggler median and move on.
		if ev.err == nil && !st.timed[s] {
			st.timed[s] = true
			st.durations = append(st.durations, ev.dur)
			st.wall[s] = ev.dur
		}
		st.mu.Unlock()
		return nil
	}
	missing := st.remaining[s]
	st.failures[s]++
	failures := st.failures[s]
	st.mu.Unlock()
	d.attemptFailures.Inc()

	err := ev.err
	if err == nil {
		// A clean return that left stripe pairs unfolded is a dropping
		// worker — as much a failure as a crash.
		err = fmt.Errorf("worker returned cleanly with %d pairs of its stripe missing", missing)
	}
	if failures > d.retries {
		return fmt.Errorf("driver: shard %d/%d failed %d time(s), retries exhausted: %v", s, d.plan.Shards, failures, err)
	}
	delay := d.backoff << (failures - 1)
	d.retriesScheduled.Inc()
	d.logf("shard %d: attempt %d failed (%v); retrying in %s (%d/%d retries used)",
		s, ev.at.n, err, delay, failures, d.retries)
	t := time.AfterFunc(delay, func() { retries <- s })
	*timers = append(*timers, t)
	return nil
}

// stragglers returns the shards whose single live attempt has run past
// StragglerFactor × the median completed-shard wall time. Each attempt
// is re-issued at most once, and the cutoff arms only once at least
// two distinct shards have completed cleanly: a median over a 0- or
// 1-sample set says nothing about the fleet, and re-issuing (then
// cancelling) a healthy lone worker off one shard's wall time would
// turn the policy into a self-inflicted fault. durations is deduped
// per shard (handleEvent), so a straggler race finishing both siblings
// of one shard cannot arm the cutoff by itself.
func (d *Driver) stragglers(st *state) []int {
	if d.plan.StragglerFactor <= 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.durations) < 2 {
		return nil
	}
	ds := append([]time.Duration(nil), st.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	cutoff := time.Duration(d.plan.StragglerFactor * float64(ds[len(ds)/2]))
	var out []int
	for s := 0; s < d.plan.Shards; s++ {
		if st.doneShard[s] || len(st.live[s]) != 1 {
			continue
		}
		at := st.live[s][0]
		if !at.reissued && d.now().Sub(at.start) > cutoff {
			at.reissued = true
			st.reissues[s]++
			d.stragglerReissues.Inc()
			out = append(out, s)
		}
	}
	return out
}
