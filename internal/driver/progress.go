// The live progress view of a distributed run: a point-in-time,
// per-shard snapshot of the fold — pending/folded pair counts, attempt
// and retry counts, straggler re-issues, worker wall times — served as
// JSON by the sweepd -status endpoint. The snapshot reads the same
// state the scheduler mutates (one mutex, one consistent view), so it
// is exact, not sampled, and works from New on: before Run it shows
// every stripe pending, after Run it keeps answering with the final
// counts.

package driver

import (
	"encoding/json"
	"net/http"
)

// ProgressSchemaVersion versions the Progress document (the -status
// wire format).
const ProgressSchemaVersion = 1

// ShardProgress is one shard's live state.
type ShardProgress struct {
	Shard int `json:"shard"`
	// Pairs is the stripe size; Folded/Pending split it by fold state.
	Pairs   int  `json:"pairs"`
	Folded  int  `json:"folded"`
	Pending int  `json:"pending"`
	Done    bool `json:"done"`
	// Attempts counts issued attempts (initial + retries + straggler
	// re-issues); Failures the failed ones; Running the live ones;
	// Reissues the straggler re-issues among Attempts.
	Attempts int `json:"attempts"`
	Failures int `json:"failures"`
	Running  int `json:"running"`
	Reissues int `json:"reissues"`
	// WallMS is the shard's clean completion wall time in milliseconds
	// (0 until the shard completes via a worker; shards completed
	// purely from resume records never get one).
	WallMS int64 `json:"wall_ms"`
}

// Progress is a point-in-time snapshot of a distributed run.
type Progress struct {
	Schema int `json:"schema"`
	// Size is the census size; Pairs the full pair space.
	Size  int `json:"size"`
	Pairs int `json:"pairs"`
	// Folded counts pairs folded so far; DoneShards the fully folded
	// stripes out of Shards.
	Folded     int `json:"folded"`
	Shards     int `json:"shards"`
	DoneShards int `json:"done_shards"`
	Workers    int `json:"workers"`
	// Shard holds the per-shard breakdown, indexed by shard number.
	Shard []ShardProgress `json:"shard_state"`
}

// Progress snapshots the run.
func (d *Driver) Progress() Progress {
	st := d.st
	st.mu.Lock()
	defer st.mu.Unlock()
	p := Progress{
		Schema:     ProgressSchemaVersion,
		Size:       d.plan.Config.Size,
		Pairs:      d.space,
		Folded:     st.folded,
		Shards:     d.plan.Shards,
		DoneShards: st.done,
		Workers:    d.plan.Workers,
		Shard:      make([]ShardProgress, d.plan.Shards),
	}
	for s := 0; s < d.plan.Shards; s++ {
		p.Shard[s] = ShardProgress{
			Shard:    s,
			Pairs:    st.stripe[s],
			Folded:   st.stripe[s] - st.remaining[s],
			Pending:  st.remaining[s],
			Done:     st.doneShard[s],
			Attempts: st.issued[s],
			Failures: st.failures[s],
			Running:  len(st.live[s]),
			Reissues: st.reissues[s],
			WallMS:   st.wall[s].Milliseconds(),
		}
	}
	return p
}

// StatusHandler serves the Progress snapshot as JSON — the handler
// behind sweepd's -status endpoint.
func (d *Driver) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.Progress())
	})
}
