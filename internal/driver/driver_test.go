package driver_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/driver"
)

// template is the standard metrics-on unsharded census config.
func template(n, maxDim int) census.Config {
	return census.Config{
		Size:    n,
		MaxDim:  maxDim,
		Shapes:  catalog.CanonicalShapesOfSize(n, maxDim),
		Metrics: true,
		Embed:   core.Embed,
	}
}

func unsharded(t *testing.T, cfg census.Config) *census.Census {
	t.Helper()
	c, err := census.Run(cfg)
	if err != nil {
		t.Fatalf("census.Run: %v", err)
	}
	return c
}

func encode(t *testing.T, c *census.Census) []byte {
	t.Helper()
	data, err := c.EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func run(t *testing.T, plan driver.Plan) *census.Census {
	t.Helper()
	d, err := driver.New(plan)
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	c, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	return c
}

// fastRetry makes test retries immediate.
const fastRetry = time.Millisecond

// TestDriverMatchesUnsharded is the core contract: for several shard
// and worker-pool geometries, the driver's merged census is bit for bit
// the unsharded census.Run artifact — including with congestion on.
func TestDriverMatchesUnsharded(t *testing.T) {
	cases := []struct {
		n, maxDim, shards, workers int
		congestion                 bool
	}{
		{24, 0, 1, 1, false},
		{24, 0, 3, 2, false},
		{36, 0, 5, 4, false},
		{16, 0, 4, 4, true},
		{60, 2, 7, 3, false},
	}
	for _, tc := range cases {
		cfg := template(tc.n, tc.maxDim)
		cfg.Congestion = tc.congestion
		want := encode(t, unsharded(t, cfg))
		got := encode(t, run(t, driver.Plan{
			Config:  cfg,
			Shards:  tc.shards,
			Workers: tc.workers,
			Worker:  driver.InProcess{},
			Backoff: fastRetry,
		}))
		if !bytes.Equal(want, got) {
			t.Errorf("n=%d shards=%d workers=%d: driver census differs from unsharded census",
				tc.n, tc.shards, tc.workers)
		}
	}
}

// TestDriverMoreShardsThanPairs: shards with empty stripes complete
// immediately and the artifact still matches.
func TestDriverMoreShardsThanPairs(t *testing.T) {
	cfg := template(4, 0)
	want := encode(t, unsharded(t, cfg))
	var mu sync.Mutex
	doneShards := 0
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 20, Workers: 3, Worker: driver.InProcess{}, Backoff: fastRetry,
		OnShardDone: func(shard, done, total int) {
			mu.Lock()
			doneShards++
			mu.Unlock()
		},
	}))
	if !bytes.Equal(want, got) {
		t.Error("driver census differs from unsharded census")
	}
	if doneShards != 20 {
		t.Errorf("OnShardDone fired %d times, want 20", doneShards)
	}
}

// TestDriverResume: seeding the fold with a prefix of the results (as a
// resumed run would after scanning a partial journal) still reproduces
// the unsharded artifact, evaluates only the missing pairs, and does
// not replay resumed records through OnResult.
func TestDriverResume(t *testing.T) {
	cfg := template(24, 0)
	full := unsharded(t, cfg)
	want := encode(t, full)
	half := append([]census.PairResult(nil), full.Results[:len(full.Results)/2]...)
	var mu sync.Mutex
	emitted := map[int]int{}
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 4, Workers: 2, Worker: driver.InProcess{},
		Backoff: fastRetry,
		Resume:  half,
		OnResult: func(r *census.PairResult) {
			mu.Lock()
			emitted[r.Index]++
			mu.Unlock()
		},
	}))
	if !bytes.Equal(want, got) {
		t.Error("resumed driver census differs from unsharded census")
	}
	if len(emitted) != len(full.Results)-len(half) {
		t.Errorf("OnResult fired for %d pairs, want the %d missing ones",
			len(emitted), len(full.Results)-len(half))
	}
	for idx, count := range emitted {
		if idx < len(half) {
			t.Errorf("OnResult replayed resumed pair %d", idx)
		}
		if count != 1 {
			t.Errorf("OnResult fired %d times for pair %d", count, idx)
		}
	}
}

// TestDriverResumeComplete: resuming from a complete artifact schedules
// no work at all.
func TestDriverResumeComplete(t *testing.T) {
	cfg := template(24, 0)
	full := unsharded(t, cfg)
	calls := 0
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 3, Workers: 2,
		Worker: workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
			calls++
			return nil
		}),
		Backoff: fastRetry,
		Resume:  full.Results,
	}))
	if !bytes.Equal(encode(t, full), got) {
		t.Error("fully resumed census differs from the original")
	}
	if calls != 0 {
		t.Errorf("worker ran %d times on a fully resumed plan", calls)
	}
}

// TestDriverRejectsBadResume: resume records from a different census
// (wrong pair naming) abort the run instead of poisoning the artifact.
func TestDriverRejectsBadResume(t *testing.T) {
	cfg := template(24, 0)
	full := unsharded(t, cfg)
	bad := full.Results[3]
	bad.Guest = "torus(999)"
	d, err := driver.New(driver.Plan{
		Config: cfg, Shards: 2, Worker: driver.InProcess{}, Backoff: fastRetry,
		Resume: []census.PairResult{bad},
	})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	if _, err := d.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("corrupt resume record accepted (err=%v)", err)
	}
}

// TestDriverJournalScanRoundTrip: the OnResult hook feeding a
// StreamWriter produces a journal whose scan resumes to the full
// census — the sweepd recovery loop in miniature.
func TestDriverJournalRoundTrip(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))

	var journal bytes.Buffer
	sw, err := census.NewStreamWriter(&journal, cfg.StreamHeader())
	if err != nil {
		t.Fatalf("stream writer: %v", err)
	}
	run(t, driver.Plan{
		Config: cfg, Shards: 3, Workers: 2, Worker: driver.InProcess{}, Backoff: fastRetry,
		OnResult: func(r *census.PairResult) {
			if err := sw.Write(r); err != nil {
				t.Errorf("journal write: %v", err)
			}
		},
	})

	// Truncate the journal mid-record (a killed run), scan what
	// survives, and resume a fresh driver from it.
	data := journal.Bytes()
	cut := data[:len(data)-(len(data)/3)]
	h, recs, err := census.ScanStream(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if err := h.SameCensus(cfg.StreamHeader()); err != nil {
		t.Fatalf("journal header mismatch: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("scan of a partial journal recovered nothing")
	}
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 3, Workers: 2, Worker: driver.InProcess{}, Backoff: fastRetry,
		Resume: recs,
	}))
	if !bytes.Equal(want, got) {
		t.Error("resumed-from-journal census differs from unsharded census")
	}
}

// TestNewValidation covers plan misconfiguration.
func TestNewValidation(t *testing.T) {
	cfg := template(12, 0)
	sharded := cfg
	sharded.Shards = 2
	skipping := cfg
	skipping.Skip = func(int) bool { return false }
	hooked := cfg
	hooked.OnResult = func(*census.PairResult) {}
	bad := []struct {
		name string
		plan driver.Plan
	}{
		{"no worker", driver.Plan{Config: cfg, Shards: 2}},
		{"sharded template", driver.Plan{Config: sharded, Shards: 2, Worker: driver.InProcess{}}},
		{"template with Skip", driver.Plan{Config: skipping, Shards: 2, Worker: driver.InProcess{}}},
		{"template with OnResult", driver.Plan{Config: hooked, Shards: 2, Worker: driver.InProcess{}}},
		{"negative shards", driver.Plan{Config: cfg, Shards: -1, Worker: driver.InProcess{}}},
		{"negative workers", driver.Plan{Config: cfg, Workers: -2, Worker: driver.InProcess{}}},
	}
	for _, tc := range bad {
		if _, err := driver.New(tc.plan); err == nil {
			t.Errorf("%s: New accepted the plan", tc.name)
		}
	}
}

// TestDriverContextCancel: a cancelled context aborts the run with its
// error instead of hanging.
func TestDriverContextCancel(t *testing.T) {
	cfg := template(24, 0)
	ctx, cancel := context.WithCancel(context.Background())
	blocked := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		<-ctx.Done()
		return ctx.Err()
	})
	d, err := driver.New(driver.Plan{Config: cfg, Shards: 2, Workers: 2, Worker: blocked, Backoff: fastRetry})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	donec := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx)
		donec <- err
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Error("cancelled run returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// workerFunc adapts a function to the Worker interface.
type workerFunc func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error

func (f workerFunc) Run(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
	return f(ctx, job, emit)
}
