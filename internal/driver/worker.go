// The two Worker implementations the driver ships with. InProcess runs
// shard jobs as census.Run calls inside the driver's own process — the
// test and single-machine form. Subprocess execs a sweep binary in
// -worker mode and folds the NDJSON stream it emits on stdout — the
// production form, and the shape a multi-machine transport (ssh, a
// container scheduler) would imitate: anything that can exec a binary
// and pipe bytes back can be a worker.

package driver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"

	"torusmesh/internal/census"
)

// InProcess evaluates shard jobs with census.Run in this process,
// streaming each pair's record to the driver as it completes. A
// cancelled context stops the run between pairs (census.Config's
// Interrupt hook), so a straggler sibling that lost its race, or a
// torn-down run, does not keep a worker slot busy evaluating pairs
// nobody will fold.
type InProcess struct{}

// Run implements Worker.
func (InProcess) Run(ctx context.Context, job Job, emit func(census.PairResult) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg := job.Config
	var emitErr error
	cfg.OnResult = func(r *census.PairResult) {
		// census.Run serializes OnResult calls, so this needs no lock.
		if emitErr != nil {
			return
		}
		emitErr = emit(*r)
	}
	cfg.Interrupt = func() bool { return ctx.Err() != nil || emitErr != nil }
	if _, err := census.Run(cfg); err != nil {
		if ctxErr := ctx.Err(); errors.Is(err, census.ErrInterrupted) && ctxErr != nil {
			return ctxErr
		}
		if errors.Is(err, census.ErrInterrupted) && emitErr != nil {
			return emitErr
		}
		return err
	}
	return emitErr
}

// Subprocess evaluates shard jobs by exec'ing a sweep binary in
// -worker mode and reading the NDJSON stream from its stdout. The
// creator supplies the base invocation (size, maxdim, metric flags, a
// -resume journal, testing hooks); the per-job "-worker -shard i/m"
// arguments are appended here. Safe for concurrent Run calls.
type Subprocess struct {
	// Bin is the sweep binary path.
	Bin string
	// Args is the base argument list; it must describe the same census
	// as the plan's template (the stream header is checked against it).
	Args []string
}

// Run implements Worker.
func (w Subprocess) Run(ctx context.Context, job Job, emit func(census.PairResult) error) error {
	args := append(append([]string(nil), w.Args...),
		"-worker", "-shard", fmt.Sprintf("%d/%d", job.Shard, job.Shards))
	cmd := exec.CommandContext(ctx, w.Bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	streamErr := w.readStream(job, stdout, emit)
	if streamErr != nil {
		// The stream (or a record the driver rejected) is already
		// useless; kill the worker rather than let it spend the rest
		// of its shard computing pairs nobody will fold.
		cmd.Process.Kill()
	}
	// Always drain stdout before Wait so a still-writing worker cannot
	// block on a full pipe, and always Wait so the process is reaped.
	io.Copy(io.Discard, stdout)
	waitErr := cmd.Wait()
	if streamErr != nil {
		return fmt.Errorf("%v%s", streamErr, stderrTail(&stderr))
	}
	if waitErr != nil {
		return fmt.Errorf("%s %s: %v%s", w.Bin, strings.Join(args, " "), waitErr, stderrTail(&stderr))
	}
	return nil
}

// readStream folds the worker's NDJSON stream: header validation, then
// every record into emit. A header that disagrees with the job's
// census template means the base Args describe a different sweep — a
// wiring bug worth failing loudly on.
func (w Subprocess) readStream(job Job, stdout io.Reader, emit func(census.PairResult) error) error {
	sr, err := census.NewStreamReader(stdout)
	if err != nil {
		return err
	}
	if sr.Header.Shard != job.Shard || sr.Header.Shards != job.Shards {
		return fmt.Errorf("driver: worker streamed shard %d/%d, job is %d/%d",
			sr.Header.Shard, sr.Header.Shards, job.Shard, job.Shards)
	}
	if err := sr.Header.SameCensus(job.Config.StreamHeader()); err != nil {
		return fmt.Errorf("driver: worker stream does not match the plan: %v", err)
	}
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(*rec); err != nil {
			return err
		}
	}
}

// stderrTail renders the last chunk of a worker's stderr for error
// messages, or "" when it wrote nothing.
func stderrTail(buf *bytes.Buffer) string {
	s := strings.TrimSpace(buf.String())
	if s == "" {
		return ""
	}
	const max = 512
	if len(s) > max {
		s = "..." + s[len(s)-max:]
	}
	return "; worker stderr: " + s
}
