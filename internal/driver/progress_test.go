package driver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"torusmesh/internal/census"
	"torusmesh/internal/driver"
	"torusmesh/internal/obs"
)

// TestProgressBeforeRun: the -status endpoint answers from construction
// — before Run, every stripe is pending and nothing is folded or done.
func TestProgressBeforeRun(t *testing.T) {
	cfg := template(24, 0)
	d, err := driver.New(driver.Plan{Config: cfg, Shards: 3, Workers: 2, Worker: driver.InProcess{}})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	p := d.Progress()
	if p.Schema != driver.ProgressSchemaVersion {
		t.Errorf("schema = %d, want %d", p.Schema, driver.ProgressSchemaVersion)
	}
	if p.Folded != 0 || p.DoneShards != 0 {
		t.Errorf("fresh driver reports folded=%d done_shards=%d", p.Folded, p.DoneShards)
	}
	if p.Pairs == 0 {
		t.Fatal("fresh driver reports an empty pair space")
	}
	total := 0
	for _, s := range p.Shard {
		if s.Pending != s.Pairs || s.Folded != 0 || s.Done || s.Attempts != 0 {
			t.Errorf("shard %d not fully pending before Run: %+v", s.Shard, s)
		}
		total += s.Pairs
	}
	if total != p.Pairs {
		t.Errorf("stripes sum to %d pairs, want %d", total, p.Pairs)
	}
}

// TestProgressInjectedRetry is the observability contract for a run
// with exactly one failure: the first attempt of shard 1 dies, the
// retry completes it, and both the Progress snapshot and the registry
// counters report exactly that — attempts 2 / failures 1 on shard 1,
// attempts 1 / failures 0 everywhere else, one retry total — while the
// merged artifact still matches the unsharded census byte for byte.
func TestProgressInjectedRetry(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))

	var failed atomic.Bool
	flaky := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		if job.Shard == 1 && !failed.Swap(true) {
			return context.DeadlineExceeded // any non-nil error: the attempt failed
		}
		return driver.InProcess{}.Run(ctx, job, emit)
	})
	d, err := driver.New(driver.Plan{
		Config: cfg, Shards: 3, Workers: 2, Worker: flaky, Backoff: fastRetry,
	})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	c, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if !bytes.Equal(want, encode(t, c)) {
		t.Error("census with an injected retry differs from unsharded census")
	}

	p := d.Progress()
	if p.Folded != p.Pairs || p.DoneShards != 3 {
		t.Errorf("final snapshot folded=%d/%d done_shards=%d, want complete", p.Folded, p.Pairs, p.DoneShards)
	}
	for _, s := range p.Shard {
		wantAttempts, wantFailures := 1, 0
		if s.Shard == 1 {
			wantAttempts, wantFailures = 2, 1
		}
		if !s.Done || s.Pending != 0 || s.Folded != s.Pairs || s.Running != 0 || s.Reissues != 0 {
			t.Errorf("shard %d final state: %+v", s.Shard, s)
		}
		if s.Attempts != wantAttempts || s.Failures != wantFailures {
			t.Errorf("shard %d attempts=%d failures=%d, want %d/%d",
				s.Shard, s.Attempts, s.Failures, wantAttempts, wantFailures)
		}
		if s.Shard != 1 && s.Pairs > 0 && s.WallMS < 0 {
			t.Errorf("shard %d wall time %dms", s.Shard, s.WallMS)
		}
	}

	reg := d.Registry()
	counters := map[string]int64{
		"sweepd_attempts_total":           4,
		"sweepd_attempt_failures_total":   1,
		"sweepd_retries_total":            1,
		"sweepd_straggler_reissues_total": 0,
		"sweepd_records_folded_total":     int64(p.Pairs),
		"sweepd_records_duplicate_total":  0,
		"sweepd_records_rejected_total":   0,
	}
	for name, wantV := range counters {
		if got := reg.Counter(name).Value(); got != wantV {
			t.Errorf("%s = %d, want %d", name, got, wantV)
		}
	}
	if got := reg.Histogram("sweepd_attempt_seconds", obs.DefDurationBuckets()).Count(); got != 4 {
		t.Errorf("sweepd_attempt_seconds count = %d, want 4", got)
	}

	// The HTTP view is the same snapshot, decoded.
	rec := httptest.NewRecorder()
	d.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("status Content-Type = %q", ct)
	}
	var got driver.Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode status body: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("status endpoint snapshot differs from Progress():\nhttp: %+v\ndirect: %+v", got, p)
	}
}
