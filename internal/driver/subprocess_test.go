package driver_test

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"testing"

	"torusmesh/internal/driver"
)

// buildSweep compiles the real cmd/sweep binary for subprocess-worker
// tests, skipping when no go toolchain is available.
func buildSweep(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH; subprocess worker is covered by the CI smoke")
	}
	bin := filepath.Join(t.TempDir(), "sweep")
	cmd := exec.Command(goBin, "build", "-o", bin, "torusmesh/cmd/sweep")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build cmd/sweep: %v\n%s", err, out)
	}
	return bin
}

// TestSubprocessWorker drives the driver over real `sweep -worker`
// subprocesses and checks the merged artifact against the unsharded
// engine — the production transport, minus the network.
func TestSubprocessWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := buildSweep(t)
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))
	got := encode(t, run(t, driver.Plan{
		Config:  cfg,
		Shards:  3,
		Workers: 2,
		Worker: driver.Subprocess{Bin: bin, Args: []string{
			"-n", "24", "-maxdim", "0", "-metrics=true", "-congestion=false",
		}},
		Backoff: fastRetry,
	}))
	if !bytes.Equal(want, got) {
		t.Error("subprocess-worker census differs from unsharded census")
	}
}

// TestSubprocessWorkerMismatch: a worker invocation describing a
// different census (wrong size) must fail its attempts — the stream
// header check — and exhaust retries rather than corrupt the artifact.
func TestSubprocessWorkerMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := buildSweep(t)
	cfg := template(24, 0)
	d, err := driver.New(driver.Plan{
		Config:  cfg,
		Shards:  2,
		Workers: 2,
		Worker:  driver.Subprocess{Bin: bin, Args: []string{"-n", "36"}},
		Retries: -1,
		Backoff: fastRetry,
	})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("driver accepted workers sweeping a different census")
	}
}
