package driver_test

import (
	"sync/atomic"
	"testing"
	"time"

	"torusmesh/internal/driver"
)

// TestClockInjection proves Plan.Clock substitutes the wall clock for
// the merged Elapsed and the attempt timings: with an hour-stepping
// fake, every measured duration is a whole number of hours — values a
// real clock could not produce in-process. The fake must be
// goroutine-safe; workers and the straggler monitor read it
// concurrently.
func TestClockInjection(t *testing.T) {
	const tick = time.Hour
	var reads atomic.Int64
	base := time.Unix(0, 0)
	c := run(t, driver.Plan{
		Config: template(6, 2), Shards: 3, Workers: 2,
		Worker: driver.InProcess{}, Backoff: fastRetry,
		Clock: func() time.Time {
			return base.Add(time.Duration(reads.Add(1)) * tick)
		},
	})
	if c.Elapsed <= 0 || c.Elapsed%tick != 0 {
		t.Errorf("merged Elapsed = %v, not a positive tick multiple", c.Elapsed)
	}
	if reads.Load() == 0 {
		t.Error("injected clock was never read")
	}
}
