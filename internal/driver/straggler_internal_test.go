package driver

import (
	"testing"
	"time"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
)

// TestStragglerMedianPerShard: the straggler median draws one clean
// wall-time sample per completed shard, not per attempt — a straggler
// race finishing both siblings of one shard must contribute a single
// sample and must not arm the cutoff — and with fewer than two samples
// the cutoff stays disarmed no matter how long an attempt has run.
func TestStragglerMedianPerShard(t *testing.T) {
	cfg := census.Config{
		Size:    24,
		Shapes:  catalog.CanonicalShapesOfSize(24, 0),
		Metrics: true,
		Embed:   core.Embed,
	}
	d, err := New(Plan{Config: cfg, Shards: 3, Workers: 2, Worker: InProcess{}, StragglerFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := 3
	st := &state{
		remaining: make([]int, m),
		doneShard: make([]bool, m),
		failures:  make([]int, m),
		issued:    make([]int, m),
		reissues:  make([]int, m),
		live:      make([][]*attempt, m),
		wall:      make([]time.Duration, m),
		timed:     make([]bool, m),
	}
	// Shard 0 completed; both of its attempts (the winner and a
	// straggler sibling that also returned cleanly) report durations.
	st.doneShard[0] = true
	a1, a2 := &attempt{shard: 0}, &attempt{shard: 0}
	st.live[0] = []*attempt{a1, a2}
	if err := d.handleEvent(st, event{at: a1, dur: time.Millisecond}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.handleEvent(st, event{at: a2, dur: 2 * time.Millisecond}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(st.durations) != 1 {
		t.Fatalf("one completed shard recorded %d duration samples, want 1", len(st.durations))
	}
	// Shard 1 has run far past any cutoff the single sample would set:
	// with fewer than two completed shards, nothing may be re-issued.
	st.live[1] = []*attempt{{shard: 1, start: time.Now().Add(-time.Hour)}}
	if got := d.stragglers(st); len(got) != 0 {
		t.Fatalf("cutoff armed on a 1-sample median: re-issued shards %v", got)
	}
	// A second completed shard supplies the second sample; now the
	// long-running attempt is a straggler.
	st.doneShard[2] = true
	a3 := &attempt{shard: 2}
	st.live[2] = []*attempt{a3}
	if err := d.handleEvent(st, event{at: a3, dur: 3 * time.Millisecond}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(st.durations) != 2 {
		t.Fatalf("two completed shards recorded %d duration samples, want 2", len(st.durations))
	}
	if got := d.stragglers(st); len(got) != 1 || got[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", got)
	}
}
