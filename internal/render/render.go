// Package render draws toruses, meshes and embeddings as ASCII grids,
// regenerating the layout figures of the paper (Figures 5, 7, 10 and 12
// show embeddings as labelled grids). A 2-dimensional host is one grid;
// higher-dimensional hosts are drawn as a sequence of 2-dimensional
// planes indexed by the remaining coordinates, matching the paper's
// "plane" view of h_L (Figure 7).
package render

import (
	"fmt"
	"strings"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// Grid renders the shape's nodes as a table of labels, first coordinate
// down the rows, second across the columns (the paper's convention:
// origin at the lower left, first dimension vertical). For dimensions
// above 2 one block is emitted per combination of the trailing
// coordinates.
func Grid(shape grid.Shape, label func(grid.Node) string) string {
	var b strings.Builder
	writeGrid(&b, shape, label)
	return b.String()
}

func writeGrid(b *strings.Builder, shape grid.Shape, label func(grid.Node) string) {
	switch len(shape) {
	case 0:
		return
	case 1:
		cells := make([]string, shape[0])
		width := 0
		for i := range cells {
			cells[i] = label(grid.Node{i})
			if len(cells[i]) > width {
				width = len(cells[i])
			}
		}
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%*s", width, c)
		}
		b.WriteString("\n")
	case 2:
		rows, cols := shape[0], shape[1]
		cells := make([][]string, rows)
		width := 0
		for r := 0; r < rows; r++ {
			cells[r] = make([]string, cols)
			for c := 0; c < cols; c++ {
				cells[r][c] = label(grid.Node{r, c})
				if len(cells[r][c]) > width {
					width = len(cells[r][c])
				}
			}
		}
		// Paper convention: the first coordinate increases upward, so row
		// rows-1 prints first.
		for r := rows - 1; r >= 0; r-- {
			for c := 0; c < cols; c++ {
				if c > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(b, "%*s", width, cells[r][c])
			}
			b.WriteString("\n")
		}
	default:
		// Iterate the trailing coordinates; draw one 2D plane per value.
		tail := shape[2:]
		tailN := tail.Size()
		for t := 0; t < tailN; t++ {
			suffix := tail.NodeAt(t)
			fmt.Fprintf(b, "plane (*,*%s:\n", strings.TrimPrefix(suffix.String(), "("))
			writeGrid(b, shape[:2], func(n grid.Node) string {
				full := make(grid.Node, 0, len(shape))
				full = append(full, n...)
				full = append(full, suffix...)
				return label(full)
			})
		}
	}
}

// Embedding renders the host graph with each node labelled by the
// row-major index of its guest pre-image — the format of Figure 10.
func Embedding(e *embed.Embedding) string {
	inverse := make(map[int]int, e.From.Size())
	for x, host := range e.Table() {
		inverse[host] = x
	}
	return Grid(e.To.Shape, func(node grid.Node) string {
		x, ok := inverse[e.To.Shape.Index(node)]
		if !ok {
			return "."
		}
		return fmt.Sprintf("%d", x)
	})
}

// Circuit renders the host graph with each node labelled by its position
// in the given node sequence (Hamiltonian circuits and paths).
func Circuit(sp grid.Spec, seq []grid.Node) string {
	pos := make(map[int]int, len(seq))
	for i, node := range seq {
		pos[sp.Shape.Index(node)] = i
	}
	return Grid(sp.Shape, func(node grid.Node) string {
		p, ok := pos[sp.Shape.Index(node)]
		if !ok {
			return "."
		}
		return fmt.Sprintf("%d", p)
	})
}
