package render

import (
	"strconv"
	"strings"
	"testing"

	"torusmesh/internal/core"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/ham"
	"torusmesh/internal/radix"
)

func TestGrid1D(t *testing.T) {
	out := Grid(grid.Shape{4}, func(n grid.Node) string { return n.String() })
	if !strings.Contains(out, "(0)") || !strings.Contains(out, "(3)") {
		t.Errorf("1D grid output wrong:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 1 {
		t.Errorf("1D grid should be one line, got %d", lines)
	}
}

func TestGrid2DOrientation(t *testing.T) {
	// The first coordinate increases upward: node (2,0) appears on the
	// first printed line, node (0,0) on the last.
	out := Grid(grid.Shape{3, 2}, func(n grid.Node) string { return n.String() })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "(2,0)") {
		t.Errorf("top row should start with (2,0):\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "(0,0)") {
		t.Errorf("bottom row should start with (0,0):\n%s", out)
	}
}

func TestGrid3DPlanes(t *testing.T) {
	out := Grid(grid.Shape{4, 2, 3}, func(n grid.Node) string { return "x" })
	if got := strings.Count(out, "plane"); got != 3 {
		t.Errorf("expected 3 planes, got %d:\n%s", got, out)
	}
}

// TestEmbeddingFigure10 renders the f_L embedding of a line in the
// (4,2,3)-mesh and checks a few cell positions against Figure 10(d):
// f(0) = (0,0,0) so plane 0's bottom-left is 0; f(23) = (3,0,0) so plane
// 0's top-left is 23.
func TestEmbeddingFigure10(t *testing.T) {
	e, err := core.Embed(grid.LineSpec(24), grid.MeshSpec(4, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	out := Embedding(e)
	planes := strings.Split(out, "plane")
	if len(planes) != 4 { // leading empty + 3 planes
		t.Fatalf("expected 3 planes:\n%s", out)
	}
	plane0 := strings.Split(strings.TrimSpace(planes[1]), "\n")
	// plane0[0] is the header remnant; rows follow top (first coord 3)
	// to bottom (first coord 0).
	rows := plane0[1:]
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows in plane 0, got %d:\n%s", len(rows), out)
	}
	top := strings.Fields(rows[0])
	bottom := strings.Fields(rows[3])
	if top[0] != "23" {
		t.Errorf("top-left of plane 0 = %s, want 23 (f maps 23 to (3,0,0))", top[0])
	}
	if bottom[0] != "0" {
		t.Errorf("bottom-left of plane 0 = %s, want 0", bottom[0])
	}
}

func TestCircuitRender(t *testing.T) {
	sp := grid.MeshSpec(3, 4)
	circuit, err := ham.Circuit(sp)
	if err != nil {
		t.Fatal(err)
	}
	out := Circuit(sp, circuit)
	for i := 0; i < 12; i++ {
		if !strings.Contains(out, " ") {
			break
		}
	}
	fields := strings.Fields(out)
	if len(fields) != 12 {
		t.Fatalf("expected 12 labels, got %d:\n%s", len(fields), out)
	}
	seen := map[string]bool{}
	for _, f := range fields {
		seen[f] = true
	}
	for _, want := range []string{"0", "11"} {
		if !seen[want] {
			t.Errorf("label %s missing:\n%s", want, out)
		}
	}
}

// TestRenderRSequence draws the r_L sequence of Figure 5: positions 0..3
// march down the first column of a (4,3)-grid.
func TestRenderRSequence(t *testing.T) {
	L := radix.Base{4, 3}
	pos := make(map[int]int)
	for x := 0; x < 12; x++ {
		pos[grid.Shape(L).Index(gray.R(L, x))] = x
	}
	out := Grid(grid.Shape(L), func(n grid.Node) string {
		return strconv.Itoa(pos[grid.Shape(L).Index(n)])
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Column 0 top-to-bottom must read 0,1,2,3 (Figure 5: first column
	// filled downward from the top).
	for i, want := range []string{"0", "1", "2", "3"} {
		got := strings.Fields(lines[i])[0]
		if got != want {
			t.Errorf("row %d column 0 = %s, want %s\n%s", i, got, want, out)
		}
	}
}
