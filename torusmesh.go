package torusmesh

import (
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// Kind distinguishes toruses (wrap-around edges) from meshes.
type Kind = grid.Kind

// The two graph families of the paper.
const (
	KindTorus = grid.Torus
	KindMesh  = grid.Mesh
)

// Shape is the list of dimension lengths (l1, ..., ld), every entry >= 2.
type Shape = grid.Shape

// Node is a coordinate list (i1, ..., id) with ij in [lj].
type Node = grid.Node

// Spec identifies a concrete graph: a family plus a shape.
type Spec = grid.Spec

// Embedding is an injection of a guest graph's nodes into a host graph's
// nodes, carrying the paper's dilation guarantee (Predicted) and exact
// measurement (Dilation).
type Embedding = embed.Embedding

// Torus returns the torus with the given dimension lengths.
func Torus(lengths ...int) Spec { return grid.TorusSpec(lengths...) }

// Mesh returns the mesh with the given dimension lengths.
func Mesh(lengths ...int) Spec { return grid.MeshSpec(lengths...) }

// Ring returns the ring (1-dimensional torus) of size n.
func Ring(n int) Spec { return grid.RingSpec(n) }

// Line returns the line (1-dimensional mesh) of size n.
func Line(n int) Spec { return grid.LineSpec(n) }

// Hypercube returns the hypercube of 2^d nodes (as a torus spec; torus
// and mesh coincide for all-twos shapes and Embed exploits that freely).
func Hypercube(d int) Spec { return grid.MustSpec(grid.Torus, grid.Hypercube(d)) }

// SquareTorus returns the d-dimensional torus with every length l.
func SquareTorus(d, l int) Spec { return grid.MustSpec(grid.Torus, grid.Square(d, l)) }

// SquareMesh returns the d-dimensional mesh with every length l.
func SquareMesh(d, l int) Spec { return grid.MustSpec(grid.Mesh, grid.Square(d, l)) }

// ParseSpec parses "torus:4x2x3", "mesh:6x9", "ring:24" or "line:24".
func ParseSpec(s string) (Spec, error) { return grid.ParseSpec(s) }

// ParseShape parses "4x2x3".
func ParseShape(s string) (Shape, error) { return grid.ParseShape(s) }

// Embed constructs an embedding of g in h using the cheapest construction
// the paper offers for the pair: basic (guest dimension 1), coordinate
// permutation (equal dimension), expansion (increasing dimension), simple
// or general reduction (lowering dimension), or the square-graph chains of
// Section 5. It fails when the sizes differ or no construction applies.
func Embed(g, h Spec) (*Embedding, error) { return core.Embed(g, h) }

// MustEmbed is Embed but panics on error; intended for examples and
// fixed shapes known to satisfy the paper's conditions.
func MustEmbed(g, h Spec) *Embedding {
	e, err := core.Embed(g, h)
	if err != nil {
		panic(err)
	}
	return e
}

// PredictedDilation returns the dilation guarantee Embed attaches for
// the pair without needing the caller to inspect the embedding.
func PredictedDilation(g, h Spec) (int, error) { return core.Predicted(g, h) }

// Distance returns the graph distance between two nodes of the spec
// (Lemmas 5 and 6: the L1 metric, cyclic per dimension for toruses).
func Distance(sp Spec, a, b Node) int { return sp.Distance(a, b) }
