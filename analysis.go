package torusmesh

import (
	"fmt"
	"math/big"

	"torusmesh/internal/baseline"
	"torusmesh/internal/embed"
	"torusmesh/internal/optimal"
)

// MinDilation computes the exact minimum dilation over all embeddings of
// g in h by branch-and-bound. Factorial cost: maxNodes (suggested <= 16)
// guards against accidental large runs.
func MinDilation(g, h Spec, maxNodes int) (int, error) {
	return optimal.MinDilation(g, h, maxNodes)
}

// DilationLowerBound returns the best computable lower bound on the
// dilation of any embedding of g in h: the maximum of the ball-counting
// bound behind Theorem 47 and the degree bound.
func DilationLowerBound(g, h Spec) int {
	ball := optimal.LowerBoundBall(g, h)
	if deg := optimal.LowerBoundDegree(g, h); deg > ball {
		return deg
	}
	return ball
}

// RowMajorEmbedding returns the naive identity-by-index embedding of g
// in h, the baseline the paper's reflected sequences improve on.
func RowMajorEmbedding(g, h Spec) (*Embedding, error) { return baseline.RowMajor(g, h) }

// FitzgeraldMeshLine returns the known optimal dilation of embedding a
// square d-dimensional mesh of side l in a line, for d = 2 (l) and d = 3
// (⌊3l²/4 + l/2⌋) [Fit74]. ok is false for other d.
func FitzgeraldMeshLine(d, l int) (cost int, ok bool) {
	switch d {
	case 2:
		return baseline.Fitzgerald2D(l), true
	case 3:
		return baseline.Fitzgerald3D(l), true
	default:
		return 0, false
	}
}

// HarperHypercubeLine returns the known optimal dilation of embedding a
// hypercube of size 2^d in a line: Σ_{k=0}^{d-1} C(k, ⌊k/2⌋) [Har66].
func HarperHypercubeLine(d int) int { return baseline.HarperHypercubeLine(d) }

// Epsilon returns the appendix quantity ε_m with
// Harper(d) = ε_{d-1}·2^{d-1}: exactly 1 for m <= 2 and strictly
// decreasing afterwards.
func Epsilon(m int) *big.Rat { return baseline.Epsilon(m) }

// OptimalEmbedding returns a provably minimum-dilation embedding found
// by exhaustive branch-and-bound. Factorial cost; maxNodes (suggested
// <= 16) guards against large instances.
func OptimalEmbedding(g, h Spec, maxNodes int) (*Embedding, error) {
	d, table, err := optimal.MinDilationWitness(g, h, maxNodes)
	if err != nil {
		return nil, err
	}
	if table == nil {
		return nil, fmt.Errorf("torusmesh: no assignment found for %s -> %s", g, h)
	}
	return embed.FromTable(g, h, "optimal/branch-and-bound", d, table)
}

// ExportEmbedding serializes an embedding (specs, strategy, table and
// measured dilation) as JSON, so placements can be stored and shipped to
// runtime systems without this library.
func ExportEmbedding(e *Embedding) ([]byte, error) { return embed.Export(e) }

// ImportEmbedding reconstructs and verifies an embedding exported by
// ExportEmbedding.
func ImportEmbedding(data []byte) (*Embedding, error) { return embed.Import(data) }

// EmbeddingKernel is a compiled batch evaluator over row-major ranks:
// EvalBatch(dst, src) writes the host rank of each guest rank src[i]
// into dst[i]. Every Embedding exposes one via its Kernel method; the
// measurement paths (Dilation, AverageDilation, Verify) and the netsim
// placement pipeline run on it.
type EmbeddingKernel = embed.Kernel

// MapRanks evaluates the embedding over a batch of guest row-major
// ranks, writing host ranks into dst (len(dst) must equal len(src)).
// This is the index-native bulk form of Map for runtime systems that
// store placements as rank tables.
func MapRanks(e *Embedding, dst, src []int) { e.EvalBatch(dst, src) }

// SetMaterializeThreshold sets the guest-size cutoff (in nodes) below
// which embedding kernels are materialized into lookup tables on first
// use. n <= 0 disables materialization; the default is
// embed.DefaultMaterializeThreshold (1<<22).
func SetMaterializeThreshold(n int) { embed.SetMaterializeThreshold(n) }

// MaterializeThreshold returns the current materialization cutoff.
func MaterializeThreshold() int { return embed.MaterializeThreshold() }
