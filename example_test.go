package torusmesh_test

import (
	"context"
	"fmt"

	"torusmesh"
)

// The basic workflow: build two specs, embed, inspect cost and map.
func ExampleEmbed() {
	ring := torusmesh.Ring(24)
	mesh := torusmesh.Mesh(4, 2, 3)
	e, err := torusmesh.Embed(ring, mesh)
	if err != nil {
		panic(err)
	}
	fmt.Println("dilation:", e.Dilation())
	fmt.Println("node 0 ->", e.Map(torusmesh.Node{0}))
	// Output:
	// dilation: 1
	// node 0 -> (3,0,0)
}

// f_L generalizes the binary reflected Gray code to mixed radices.
func ExampleGrayF() {
	L := torusmesh.Shape{2, 3}
	for x := 0; x < 6; x++ {
		fmt.Println(torusmesh.GrayF(L, x))
	}
	// Output:
	// (0,0)
	// (0,1)
	// (0,2)
	// (1,2)
	// (1,1)
	// (1,0)
}

// Every torus has a Hamiltonian circuit (Corollary 29); odd meshes have
// none (Corollary 18).
func ExampleHasHamiltonianCircuit() {
	fmt.Println(torusmesh.HasHamiltonianCircuit(torusmesh.Torus(3, 3)))
	fmt.Println(torusmesh.HasHamiltonianCircuit(torusmesh.Mesh(3, 3)))
	fmt.Println(torusmesh.HasHamiltonianCircuit(torusmesh.Mesh(3, 4)))
	// Output:
	// true
	// false
	// true
}

// Dilation lower bounds certify optimality claims.
func ExampleMinDilation() {
	opt, err := torusmesh.MinDilation(torusmesh.Ring(9), torusmesh.Mesh(3, 3), 16)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal:", opt)
	// Output:
	// optimal: 2
}

// A many-to-one simulation hosts a larger guest at constant load.
func ExampleSimulateManyToOne() {
	sim, err := torusmesh.SimulateManyToOne(torusmesh.Mesh(8, 6), torusmesh.Mesh(4, 3))
	if err != nil {
		panic(err)
	}
	fmt.Println("load:", sim.Load)
	fmt.Println("dilation:", sim.Dilation())
	// Output:
	// load: 4
	// dilation: 1
}

// A full coverage census of one size, run as a sharded fleet with
// retries under the distributed driver — the artifact is bit-for-bit
// what a single unsharded sweep would produce.
func ExampleRunDistributed() {
	c, err := torusmesh.RunDistributed(context.Background(), 12, torusmesh.DistributedOptions{
		Shards:  4,
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs: %d, embeddable: %d\n", c.Pairs, c.Embeddable)
	// Output:
	// pairs: 64, embeddable: 64
}

// The placement search trades the paper's dilation-optimal construction
// for one with lower link congestion on the simulated machine.
func ExamplePlace() {
	res, err := torusmesh.Place(torusmesh.Torus(8, 2), torusmesh.Mesh(4, 4))
	if err != nil {
		panic(err)
	}
	fmt.Println("baseline: dilation", res.Baseline.Dilation, "peak congestion", res.Baseline.Peak)
	fmt.Println("best:     dilation", res.Best.Dilation, "peak congestion", res.Best.Peak)
	fmt.Println("variant: ", res.Best.Desc())
	// Output:
	// baseline: dilation 4 peak congestion 4
	// best:     dilation 3 peak congestion 2
	// variant:  paper gperm=[1 0]
}
