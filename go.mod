module torusmesh

go 1.24
