package torusmesh

import "torusmesh/internal/render"

// RenderEmbedding draws the host graph as ASCII grid(s) with every node
// labelled by the row-major index of its guest pre-image — the layout
// format of Figure 10 in the paper. Hosts of dimension above 2 are drawn
// as one plane per trailing coordinate.
func RenderEmbedding(e *Embedding) string { return render.Embedding(e) }

// RenderCircuit draws the graph with every node labelled by its position
// in the node sequence (Hamiltonian circuits and paths).
func RenderCircuit(sp Spec, seq []Node) string { return render.Circuit(sp, seq) }

// RenderGrid draws the shape with arbitrary labels; the first coordinate
// increases upward, matching the paper's figures.
func RenderGrid(shape Shape, label func(Node) string) string {
	return render.Grid(shape, label)
}
